// Extension experiment (reliability): fault tolerance of the distributed
// LightRW simulation. Sweeps the link fault rate and the walker-state
// checkpoint interval around a scheduled mid-run board failure, and
// reports the throughput overhead of the recovery machinery plus the
// exact fault/recovery event counts.
//
// Expected shape: overhead grows with the fault rate (retransmissions)
// and with the checkpoint interval (more steps replayed per recovery);
// interval 0 disables checkpoints, so the dead board's in-flight walks
// are lost — the quantified cost of running without checkpoints.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"

namespace lightrw::bench {
namespace {

using distributed::DistributedConfig;
using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;

constexpr uint32_t kBoards = 4;

struct Row {
  double link_rate = 0.0;
  uint64_t checkpoint_interval = 0;
  double msteps_per_s = 0.0;
  double overhead_pct = 0.0;  // cycles vs the fault-free baseline
  uint64_t faults = 0;
  uint64_t retransmissions = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered = 0;
  uint64_t lost = 0;
  uint64_t replayed_steps = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

DistributedConfig BaseConfig() {
  DistributedConfig config;
  config.board = DefaultAccelConfig();
  config.board.num_instances = 1;  // one accelerator channel per board
  // Partitioned mode: walkers migrate between boards, so link faults
  // actually hit the wire and recovery re-dispatches to the vertex owner.
  config.replicate_graph = false;
  return config;
}

// Fault-free makespan, used to place the board failure mid-run and to
// express recovery overhead as a ratio. Computed once.
uint64_t BaselineCycles() {
  static uint64_t cycles = [] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const auto app = MakeMetaPath(g);
    const auto queries = StandardQueries(g, kMetaPathLength);
    const Partition partition =
        MakePartition(g, kBoards, PartitionStrategy::kHash);
    DistributedEngine engine(&g, app.get(), &partition, BaseConfig());
    return engine.Run(queries).value().cycles;
  }();
  return cycles;
}

void FaultToleranceBench(benchmark::State& state, double link_rate,
                         uint64_t checkpoint_interval) {
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  const Partition partition =
      MakePartition(g, kBoards, PartitionStrategy::kHash);

  DistributedConfig config = BaseConfig();
  config.board.faults.enabled = true;
  config.board.faults.seed = kBenchSeed;
  config.board.faults.link_drop_rate = link_rate / 2;
  config.board.faults.link_corrupt_rate = link_rate / 2;
  config.board.faults.fail_board = 1;
  config.board.faults.fail_cycle = BaselineCycles() / 2;
  config.board.faults.checkpoint_interval_cycles = checkpoint_interval;
  // The interval-0 rows measure the no-checkpoint loss mode on purpose.
  config.board.faults.allow_walker_loss = true;

  Row row;
  row.link_rate = link_rate;
  row.checkpoint_interval = checkpoint_interval;
  for (auto _ : state) {
    DistributedEngine engine(&g, app.get(), &partition, config);
    const auto result = engine.Run(queries);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const auto& stats = *result;
    row.msteps_per_s = stats.StepsPerSecond() / 1e6;
    row.overhead_pct =
        100.0 * (static_cast<double>(stats.cycles) /
                     static_cast<double>(BaselineCycles()) -
                 1.0);
    row.faults = stats.reliability.FaultsInjected();
    row.retransmissions = stats.reliability.retransmissions;
    row.checkpoints = stats.reliability.checkpoints;
    row.recovered = stats.reliability.walkers_recovered;
    row.lost = stats.reliability.walkers_lost;
    row.replayed_steps = stats.reliability.replayed_steps;
  }
  state.counters["Msteps"] = row.msteps_per_s;
  state.counters["overhead_pct"] = row.overhead_pct;
  state.counters["lost"] = static_cast<double>(row.lost);
  Rows().push_back(row);
}

void RegisterAll() {
  const double kRates[] = {0.0, 0.001, 0.01, 0.05};
  const uint64_t kIntervals[] = {0, 1u << 12, 1u << 16, 1u << 20};
  for (const double rate : kRates) {
    for (const uint64_t interval : kIntervals) {
      const std::string name = "ExtFaultTolerance/rate:" +
                               FormatDouble(rate, 3) +
                               "/ckpt:" + std::to_string(interval);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [rate, interval](benchmark::State& st) {
            FaultToleranceBench(st, rate, interval);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: fault tolerance (link fault rate x checkpoint interval, "
      "board 1 killed mid-run; overhead vs fault-free baseline)");
  const std::vector<int> widths = {10, 12, 10, 10, 8, 10, 10, 8, 6, 10};
  PrintRow({"link rate", "ckpt cycles", "Msteps/s", "overhead", "faults",
            "retrans", "ckpts", "recov", "lost", "replayed"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({FormatDouble(row.link_rate, 3),
              std::to_string(row.checkpoint_interval),
              FormatDouble(row.msteps_per_s),
              FormatDouble(row.overhead_pct, 1) + "%",
              std::to_string(row.faults),
              std::to_string(row.retransmissions),
              std::to_string(row.checkpoints), std::to_string(row.recovered),
              std::to_string(row.lost), std::to_string(row.replayed_steps)},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("link_rate", row.link_rate);
    r.Set("checkpoint_interval_cycles", row.checkpoint_interval);
    r.Set("msteps_per_s", row.msteps_per_s);
    r.Set("overhead_pct", row.overhead_pct);
    r.Set("faults_injected", row.faults);
    r.Set("retransmissions", row.retransmissions);
    r.Set("checkpoints", row.checkpoints);
    r.Set("walkers_recovered", row.recovered);
    r.Set("walkers_lost", row.lost);
    r.Set("replayed_steps", row.replayed_steps);
    rows.Append(std::move(r));
  }
  WriteBenchJson("ext_fault_tolerance", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
