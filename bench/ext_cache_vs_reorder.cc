// Extension experiment (paper §5.1 related-work contrast): the degree-
// aware cache needs no preprocessing, while prior work (Balaji & Lucia)
// reaches a similar effect by degree-sorting the vertex ids offline so a
// conventional cache maps the hot vertices densely. This bench compares,
// for MetaPath on RMAT graphs:
//   - DAC on the original graph (LightRW's approach, zero preprocessing)
//   - DMC on the original graph
//   - DMC on the degree-sorted relabeled graph (preprocessing approach)
// and reports the preprocessing time the relabeling costs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  uint32_t scale = 0;
  double dac_miss = 0.0;
  double dmc_miss = 0.0;
  double sorted_dmc_miss = 0.0;
  double preprocess_s = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

double MissRatio(const graph::CsrGraph& g, core::CacheKind kind) {
  const auto app = MakeMetaPath(g);
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.num_instances = 1;
  config.cache_kind = kind;
  config.cache_entries = 1 << 12;
  core::CycleEngine engine(&g, app.get(), config);
  const auto queries = RepeatedQueries(g, kMetaPathLength, MaxQueries());
  return engine.Run(queries).cache.MissRatio();
}

void ReorderBench(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  graph::RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8;
  options.a = 0.65;
  options.b = 0.18;
  options.c = 0.12;
  options.d = 0.05;
  options.undirected = true;
  options.num_relations = 2;
  options.seed = kBenchSeed;
  const graph::CsrGraph g = GenerateRmat(options);

  Row row;
  row.scale = scale;
  for (auto _ : state) {
    row.dac_miss = MissRatio(g, core::CacheKind::kDegreeAware);
    row.dmc_miss = MissRatio(g, core::CacheKind::kDirectMapped);
    WallTimer timer;
    const graph::RelabeledGraph sorted = graph::SortByDegree(g);
    row.preprocess_s = timer.ElapsedSeconds();
    row.sorted_dmc_miss =
        MissRatio(sorted.graph, core::CacheKind::kDirectMapped);
  }
  state.counters["dac_pct"] = row.dac_miss * 100.0;
  state.counters["sorted_dmc_pct"] = row.sorted_dmc_miss * 100.0;
  Rows().push_back(row);
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: runtime degree-aware cache vs offline degree-sorted "
      "relabeling (paper §5.1: prior work needs preprocessing, DAC none)");
  const std::vector<int> widths = {12, 12, 12, 16, 14};
  PrintRow({"rmat |V|", "DAC miss", "DMC miss", "sorted+DMC miss",
            "preprocess s"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({"2^" + std::to_string(row.scale),
              FormatDouble(row.dac_miss * 100, 1) + "%",
              FormatDouble(row.dmc_miss * 100, 1) + "%",
              FormatDouble(row.sorted_dmc_miss * 100, 1) + "%",
              FormatDouble(row.preprocess_s, 3)},
             widths);
  }
}

BENCHMARK(ReorderBench)
    ->ArgName("scale")
    ->DenseRange(14, 18, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
