// Reproduces paper Fig. 17: throughput of LightRW and the CPU baseline on
// liveJournal as the query length varies from 10 to 80.
//
// Paper result: both systems deliver essentially constant throughput
// across lengths, with LightRW ~10x ahead on MetaPath and ~8.3-9.3x on
// Node2Vec.

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string app;
  uint32_t length = 0;
  double cpu_steps_s = 0.0;
  double accel_steps_s = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void QueryLengthBench(benchmark::State& state, bool node2vec) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  std::unique_ptr<apps::WalkApp> app;
  if (node2vec) {
    app = MakeNode2Vec();
  } else {
    // The relation path must cover the full requested length or MetaPath
    // walks would die at the path's end.
    app = std::make_unique<apps::MetaPathApp>(
        apps::MakeRandomRelationPath(g, length, kBenchSeed));
  }
  const auto queries = StandardQueries(g, length);

  Row row;
  row.app = node2vec ? "Node2Vec" : "MetaPath";
  row.length = length;
  for (auto _ : state) {
    baseline::BaselineEngine cpu(&g, app.get(), baseline::BaselineConfig{});
    row.cpu_steps_s = cpu.Run(queries).StepsPerSecond();
    core::CycleEngine accel(&g, app.get(), DefaultAccelConfig());
    row.accel_steps_s = accel.Run(queries).StepsPerSecond();
  }
  state.counters["cpu_Msteps"] = row.cpu_steps_s / 1e6;
  state.counters["lightrw_Msteps"] = row.accel_steps_s / 1e6;
  state.counters["speedup"] = row.accel_steps_s / row.cpu_steps_s;
  Rows().push_back(row);
}

void RegisterAll() {
  // MetaPath relation paths are generated at the requested length, so the
  // sweep applies to both apps (the paper sweeps 10..80 for both).
  for (const bool node2vec : {false, true}) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("Fig17/") + (node2vec ? "Node2Vec" : "MetaPath")).c_str(),
        [node2vec](benchmark::State& s) { QueryLengthBench(s, node2vec); });
    bench->ArgName("length");
    for (int64_t len = 10; len <= 80; len += 10) {
      bench->Arg(len);
    }
    bench->Iterations(1)->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 17: throughput vs query length on LJ "
      "(paper: flat for both systems; ~10x MetaPath, ~9x Node2Vec)");
  const std::vector<int> widths = {10, 10, 16, 18, 10};
  PrintRow({"app", "length", "cpu Mstep/s", "LightRW Mstep/s", "speedup"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.app, std::to_string(row.length),
              FormatDouble(row.cpu_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / row.cpu_steps_s) + "x"},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
