// Reproduces paper Fig. 10: throughput of the WRS Sampler module.
//  (a) throughput vs degree of parallelism k — linear up to the DRAM line
//      rate, which is reached at k=16;
//  (b) throughput vs stream length at k=16 — near line rate except for a
//      small pipeline-fill penalty on tiny streams.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lightrw/wrs_sampler_sim.h"

namespace lightrw::bench {
namespace {

struct ParallelismRow {
  uint32_t k = 0;
  double measured_gitems = 0.0;
  double theoretical_gitems = 0.0;
  double bandwidth_gbs = 0.0;
};

struct LengthRow {
  uint64_t items = 0;
  double measured_gitems = 0.0;
};

std::vector<ParallelismRow>& KRows() {
  static auto* rows = new std::vector<ParallelismRow>();
  return *rows;
}
std::vector<LengthRow>& LenRows() {
  static auto* rows = new std::vector<LengthRow>();
  return *rows;
}

void ParallelismBench(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  core::WrsSamplerSim sim(k, hwsim::DramConfig{}, kBenchSeed);
  ParallelismRow row;
  row.k = k;
  row.theoretical_gitems = sim.TheoreticalItemsPerSecond() / 1e9;
  for (auto _ : state) {
    const auto result = sim.RunStream(1 << 20);
    row.measured_gitems = result.items_per_second / 1e9;
    row.bandwidth_gbs = result.bytes_per_second / 1e9;
  }
  state.counters["Gitems_per_s"] = row.measured_gitems;
  state.counters["theoretical"] = row.theoretical_gitems;
  KRows().push_back(row);
}

void StreamLengthBench(benchmark::State& state) {
  const uint64_t items = static_cast<uint64_t>(state.range(0));
  core::WrsSamplerSim sim(16, hwsim::DramConfig{}, kBenchSeed);
  LengthRow row;
  row.items = items;
  for (auto _ : state) {
    row.measured_gitems = sim.RunStream(items).items_per_second / 1e9;
  }
  state.counters["Gitems_per_s"] = row.measured_gitems;
  LenRows().push_back(row);
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 10a: WRS sampler throughput vs parallelism k "
      "(paper: linear until DRAM line rate at k=16)");
  const std::vector<int> kw = {6, 18, 20, 18};
  PrintRow({"k", "measured Git/s", "theoretical Git/s", "bandwidth GB/s"},
           kw);
  for (const auto& row : KRows()) {
    PrintRow({std::to_string(row.k), FormatDouble(row.measured_gitems),
              FormatDouble(row.theoretical_gitems),
              FormatDouble(row.bandwidth_gbs)},
             kw);
  }
  PrintReportHeader(
      "Fig. 10b: WRS sampler throughput vs stream length at k=16 "
      "(paper: line rate, small pipeline-fill penalty on tiny streams)");
  const std::vector<int> lw = {12, 18};
  PrintRow({"items", "measured Git/s"}, lw);
  for (const auto& row : LenRows()) {
    PrintRow({std::to_string(row.items), FormatDouble(row.measured_gitems)},
             lw);
  }
}

BENCHMARK(ParallelismBench)
    ->ArgName("k")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(StreamLengthBench)
    ->ArgName("items")
    ->RangeMultiplier(4)
    ->Range(1 << 6, 1 << 16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
