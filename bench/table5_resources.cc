// Reproduces paper Table 5: FPGA resource utilization and clock frequency
// of the MetaPath and Node2Vec accelerator configurations on the U250.
//
// Utilization comes from the calibrated ResourceModel (no Vivado run is
// possible here). Paper values: MetaPath 33.52% LUT / 29.76% REG /
// 17.24% BRAM / 5.16% DSP; Node2Vec 20.84% / 18.20% / 36.12% / 2.62%;
// both at 300 MHz.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lightrw/platform_models.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string app;
  core::ResourceUsage usage;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

core::AcceleratorConfig MetaPathConfig() {
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.sampler_parallelism = 16;
  return config;
}

core::AcceleratorConfig Node2VecConfig() {
  // The Node2Vec build trades sampler lanes (its throughput is bounded by
  // the extra row-index/membership traffic anyway) for the large on-chip
  // previous-adjacency buffer.
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.sampler_parallelism = 8;
  config.prev_neighbor_buffer_edges = 65536;
  return config;
}

void ResourceBench(benchmark::State& state, bool node2vec) {
  core::ResourceModel model;
  const core::AcceleratorConfig config =
      node2vec ? Node2VecConfig() : MetaPathConfig();
  Row row;
  row.app = node2vec ? "Node2Vec" : "MetaPath";
  for (auto _ : state) {
    row.usage = model.TotalUsage(config, node2vec);
  }
  state.counters["lut_pct"] = model.LutPercent(row.usage);
  state.counters["reg_pct"] = model.RegPercent(row.usage);
  state.counters["bram_pct"] = model.BramPercent(row.usage);
  state.counters["dsp_pct"] = model.DspPercent(row.usage);
  Rows().push_back(row);
}

void PrintSummary() {
  core::ResourceModel model;
  PrintReportHeader(
      "Table 5: modeled U250 resource utilization "
      "(paper: MetaPath 33.52/29.76/17.24/5.16%, "
      "Node2Vec 20.84/18.20/36.12/2.62%, both 300 MHz)");
  const std::vector<int> widths = {10, 10, 10, 10, 10, 12};
  PrintRow({"app", "LUTs", "REGs", "BRAMs", "DSPs", "frequency"}, widths);
  for (const Row& row : Rows()) {
    PrintRow({row.app, FormatDouble(model.LutPercent(row.usage)) + "%",
              FormatDouble(model.RegPercent(row.usage)) + "%",
              FormatDouble(model.BramPercent(row.usage)) + "%",
              FormatDouble(model.DspPercent(row.usage)) + "%", "300MHz"},
             widths);
  }
}

void RegisterAll() {
  for (const bool node2vec : {false, true}) {
    benchmark::RegisterBenchmark(
        (std::string("Table5/") + (node2vec ? "Node2Vec" : "MetaPath")).c_str(),
        [node2vec](benchmark::State& s) { ResourceBench(s, node2vec); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
