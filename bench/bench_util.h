// Shared helpers for the per-figure/table benchmark binaries.
//
// Every bench binary reproduces one table or figure of the paper. Graph
// stand-ins are scaled down so the whole suite runs on one CPU core in
// minutes; set LIGHTRW_SCALE_SHIFT=0 to run at the paper's full sizes.
//
// Environment knobs:
//   LIGHTRW_SCALE_SHIFT  divide dataset |V| and |E| by 2^shift (default 7)
//   LIGHTRW_MAX_QUERIES  cap on queries per run (default 8192; 0 = |V|)
//   LIGHTRW_SIM_THREADS  host worker threads for sharded simulations
//                        (default 1); simulated metrics are unchanged by
//                        this value — only wall time moves

#ifndef LIGHTRW_BENCH_BENCH_UTIL_H_
#define LIGHTRW_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/walk_app.h"
#include "graph/generators.h"
#include "lightrw/config.h"
#include "obs/json.h"

namespace lightrw::bench {

// Paper parameter settings (§6.1.4).
inline constexpr uint32_t kMetaPathLength = 5;
inline constexpr uint32_t kNode2VecLength = 80;
inline constexpr double kNode2VecP = 2.0;
inline constexpr double kNode2VecQ = 0.5;
inline constexpr uint64_t kBenchSeed = 20230618;

uint32_t ScaleShift();
size_t MaxQueries();
// Resolved LIGHTRW_SIM_THREADS (what engines with num_threads = 0 use).
uint32_t SimThreads();

// Cached scaled stand-in for a paper dataset (built on first use).
const graph::CsrGraph& StandIn(graph::Dataset dataset);

// The paper's standard query set for a graph: one query per non-isolated
// vertex, shuffled, truncated to MaxQueries() (or `cap` if nonzero).
std::vector<apps::WalkQuery> StandardQueries(const graph::CsrGraph& graph,
                                             uint32_t length,
                                             size_t cap = 0);

// Exactly `count` queries of the given length, repeating vertices as
// needed (for the Fig. 16 query-count sweep).
std::vector<apps::WalkQuery> RepeatedQueries(const graph::CsrGraph& graph,
                                             uint32_t length, size_t count);

// Fresh MetaPath app with a relation path realizable in `graph`.
std::unique_ptr<apps::WalkApp> MakeMetaPath(const graph::CsrGraph& graph);
// Fresh Node2Vec app with the paper's p=2, q=0.5.
std::unique_ptr<apps::WalkApp> MakeNode2Vec();

// Default accelerator configuration used across benches (k=16, b1+b32,
// degree-aware cache, 4 instances — the paper's best configuration).
core::AcceleratorConfig DefaultAccelConfig();

// ---------------------------------------------------------------------------
// Plain-text table output. Each bench prints the paper-style table/series
// to stdout after the google-benchmark report.

// Prints "== <title> ==" with the reproduction context line.
void PrintReportHeader(const std::string& title);

// printf-style row helper with aligned columns.
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

std::string FormatDouble(double value, int precision = 2);

// ---------------------------------------------------------------------------
// Machine-readable output. Benches that also want to be scraped by
// scripts wrap their summary rows in a Json record and hand it to
// WriteBenchJson, which stamps the shared reproduction context (scale
// shift, query cap, seed) and writes BENCH_<name>.json to the directory
// named by LIGHTRW_BENCH_JSON_DIR (default: the working directory).

// Returns {"scale_shift": ..., "max_queries": ..., "seed": ...}.
obs::Json BenchContext();

// Writes {"bench": name, "context": BenchContext(), "rows": rows} to
// BENCH_<name>.json and prints the path. Errors are reported to stderr
// but do not abort (the plain-text table already went to stdout).
void WriteBenchJson(const std::string& name, obs::Json rows);

}  // namespace lightrw::bench

#endif  // LIGHTRW_BENCH_BENCH_UTIL_H_
