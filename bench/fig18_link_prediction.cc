// Reproduces paper Fig. 18 (the §6.7 case study): execution-time breakdown
// of the link-prediction pipeline (Node2Vec walks -> skip-gram embedding
// training -> cosine-similarity prediction) with CPU-only walks vs
// LightRW-accelerated walks.
//
// Paper result: the walk dominates end-to-end time; accelerating it with
// LightRW roughly halves the total, and the extra PCIe copies are
// negligible.

#include <benchmark/benchmark.h>

#include "analytics/embedding.h"
#include "analytics/link_prediction.h"
#include "baseline/engine.h"
#include "bench_util.h"
#include "common/timer.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string system;
  double walk_s = 0.0;
  double pcie_s = 0.0;
  double train_s = 0.0;
  double predict_s = 0.0;
  double auc = 0.0;
  double total() const { return walk_s + pcie_s + train_s + predict_s; }
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void CaseStudyBench(benchmark::State& state, bool accelerated) {
  // A smaller LJ stand-in: the embedding training must stay proportionate.
  const uint32_t shift = std::max(ScaleShift() + 2, 9u);
  static std::map<uint32_t, graph::CsrGraph>& cache =
      *new std::map<uint32_t, graph::CsrGraph>();
  auto it = cache.find(shift);
  if (it == cache.end()) {
    it = cache
             .emplace(shift, graph::MakeDatasetStandIn(
                                 graph::Dataset::kLiveJournal, shift,
                                 kBenchSeed))
             .first;
  }
  const graph::CsrGraph& g = it->second;
  const auto app = MakeNode2Vec();
  const auto queries =
      apps::MakeVertexQueries(g, /*length=*/40, kBenchSeed);

  Row row;
  row.system = accelerated ? "SNAP w/LightRW" : "SNAP";
  for (auto _ : state) {
    baseline::WalkOutput corpus;
    if (accelerated) {
      const core::AcceleratorConfig config = DefaultAccelConfig();
      core::CycleEngine engine(&g, app.get(), config);
      const auto stats = engine.Run(queries, &corpus);
      row.walk_s = stats.seconds;
      core::PcieModel pcie;
      row.pcie_s = pcie.TransferSeconds(pcie.RunBytes(
          g, config.num_instances, queries.size(), 40));
    } else {
      baseline::BaselineEngine engine(&g, app.get(),
                                      baseline::BaselineConfig{});
      const auto stats = engine.Run(queries, &corpus);
      row.walk_s = stats.seconds;
      row.pcie_s = 0.0;
    }

    WallTimer train_timer;
    analytics::EmbeddingConfig embed_config;
    embed_config.epochs = 1;
    embed_config.dimensions = 32;
    const auto embedding =
        analytics::TrainEmbedding(corpus, g.num_vertices(), embed_config);
    row.train_s = train_timer.ElapsedSeconds();

    WallTimer predict_timer;
    const auto result =
        analytics::EvaluateLinkPrediction(g, embedding, 512, kBenchSeed);
    row.predict_s = predict_timer.ElapsedSeconds();
    row.auc = result.auc;
  }
  state.counters["walk_s"] = row.walk_s;
  state.counters["train_s"] = row.train_s;
  state.counters["total_s"] = row.total();
  state.counters["auc"] = row.auc;
  Rows().push_back(row);
}

void RegisterAll() {
  benchmark::RegisterBenchmark(
      "Fig18/SNAP", [](benchmark::State& s) { CaseStudyBench(s, false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "Fig18/SNAP_w_LightRW",
      [](benchmark::State& s) { CaseStudyBench(s, true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 18: link prediction time breakdown on LJ "
      "(paper: walk dominates; LightRW halves the end-to-end time)");
  const std::vector<int> widths = {16, 10, 10, 10, 12, 10, 8};
  PrintRow({"system", "walk s", "pcie s", "train s", "predict s", "total s",
            "AUC"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.system, FormatDouble(row.walk_s, 3),
              FormatDouble(row.pcie_s, 3), FormatDouble(row.train_s, 3),
              FormatDouble(row.predict_s, 3), FormatDouble(row.total(), 3),
              FormatDouble(row.auc, 3)},
             widths);
  }
  if (Rows().size() == 2) {
    std::printf("end-to-end speedup: %.2fx\n",
                Rows()[0].total() / Rows()[1].total());
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
