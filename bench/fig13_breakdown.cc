// Reproduces paper Fig. 13: performance breakdown of the three proposed
// techniques. Each technique is disabled one at a time and the performance
// loss relative to the all-enabled configuration is reported.
//
// Paper result: WRS pipelining contributes the most (41-79%, largest on
// Node2Vec); the dynamic burst engine helps Node2Vec less (its extra
// row-index traffic eats the bandwidth); the degree-aware cache helps
// MetaPath more than Node2Vec (up to 6% on uk2002).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  std::string app;
  // Fraction of performance lost when the technique is disabled:
  // 1 - t_all / t_disabled.
  double wrs_loss = 0.0;
  double dyb_loss = 0.0;
  double dac_loss = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

uint64_t RunCycles(const graph::CsrGraph& g, const apps::WalkApp& app,
                   std::span<const apps::WalkQuery> queries,
                   const core::AcceleratorConfig& config) {
  core::CycleEngine engine(&g, &app, config);
  return engine.Run(queries).cycles;
}

void BreakdownBench(benchmark::State& state, graph::Dataset dataset,
                    bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const auto queries =
      StandardQueries(g, node2vec ? kNode2VecLength : kMetaPathLength);

  core::AcceleratorConfig all = DefaultAccelConfig();
  all.num_instances = 1;
  core::AcceleratorConfig no_wrs = all;
  no_wrs.enable_wrs_pipeline = false;
  core::AcceleratorConfig no_dyb = all;
  no_dyb.burst = core::BurstStrategy{1, 0};
  core::AcceleratorConfig no_dac = all;
  no_dac.cache_kind = core::CacheKind::kNone;

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  row.app = app->name();
  for (auto _ : state) {
    const double base = static_cast<double>(RunCycles(g, *app, queries, all));
    row.wrs_loss = 1.0 - base / RunCycles(g, *app, queries, no_wrs);
    row.dyb_loss = 1.0 - base / RunCycles(g, *app, queries, no_dyb);
    row.dac_loss = 1.0 - base / RunCycles(g, *app, queries, no_dac);
  }
  state.counters["wrs_pct"] = row.wrs_loss * 100.0;
  state.counters["dyb_pct"] = row.dyb_loss * 100.0;
  state.counters["dac_pct"] = row.dac_loss * 100.0;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    for (const bool node2vec : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig13/") + (node2vec ? "Node2Vec/" : "MetaPath/") +
              name).c_str(),
          [d, node2vec](benchmark::State& s) {
            BreakdownBench(s, d, node2vec);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 13: performance lost when disabling one technique "
      "(paper: WRS 41-79% and largest; DYB small on Node2Vec; DAC helps "
      "MetaPath more)");
  const std::vector<int> widths = {10, 10, 12, 12, 12};
  PrintRow({"dataset", "app", "WRS off", "DYB off", "DAC off"}, widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, row.app,
              FormatDouble(row.wrs_loss * 100, 1) + "%",
              FormatDouble(row.dyb_loss * 100, 1) + "%",
              FormatDouble(row.dac_loss * 100, 1) + "%"},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("dataset", row.dataset);
    r.Set("app", row.app);
    r.Set("wrs_loss_pct", row.wrs_loss * 100.0);
    r.Set("dyb_loss_pct", row.dyb_loss * 100.0);
    r.Set("dac_loss_pct", row.dac_loss * 100.0);
    rows.Append(std::move(r));
  }
  WriteBenchJson("fig13_breakdown", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
