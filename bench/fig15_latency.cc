// Reproduces paper Fig. 15: per-query latency distribution (quartile
// boxes) of LightRW vs the CPU baseline for 8192 randomly selected
// queries.
//
// Paper result: LightRW's latency is much lower and far more consistent
// (deterministic hardware pipeline vs. CPU scheduling noise).

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  std::string app;
  std::string system;
  double min_us, q1_us, median_us, q3_us, max_us;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

Row Quartiles(const SampleStats& stats, double to_us) {
  Row row;
  row.min_us = stats.Min() * to_us;
  row.q1_us = stats.Quantile(0.25) * to_us;
  row.median_us = stats.Median() * to_us;
  row.q3_us = stats.Quantile(0.75) * to_us;
  row.max_us = stats.Max() * to_us;
  return row;
}

void LatencyBench(benchmark::State& state, graph::Dataset dataset,
                  bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const uint32_t length = node2vec ? kNode2VecLength : kMetaPathLength;
  const auto queries = StandardQueries(g, length, /*cap=*/8192);

  for (auto _ : state) {
    baseline::BaselineConfig cpu_config;
    cpu_config.collect_latency = true;
    baseline::BaselineEngine cpu(&g, app.get(), cpu_config);
    const auto cpu_stats = cpu.Run(queries);

    core::AcceleratorConfig accel_config = DefaultAccelConfig();
    accel_config.collect_latency = true;
    core::CycleEngine accel(&g, app.get(), accel_config);
    const auto accel_stats = accel.Run(queries);

    Row cpu_row = Quartiles(cpu_stats.query_latency_seconds, 1e6);
    cpu_row.dataset = graph::GetDatasetInfo(dataset).name;
    cpu_row.app = app->name();
    cpu_row.system = "ThunderRW";
    Rows().push_back(cpu_row);

    // Accelerator latencies are recorded in kernel cycles at 300 MHz.
    Row accel_row =
        Quartiles(accel_stats.query_latency_cycles, 1e6 / 300e6);
    accel_row.dataset = cpu_row.dataset;
    accel_row.app = cpu_row.app;
    accel_row.system = "LightRW";
    Rows().push_back(accel_row);

    state.counters["cpu_median_us"] = cpu_row.median_us;
    state.counters["lightrw_median_us"] = accel_row.median_us;
    state.counters["cpu_iqr_us"] = cpu_row.q3_us - cpu_row.q1_us;
    state.counters["lightrw_iqr_us"] = accel_row.q3_us - accel_row.q1_us;
  }
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    for (const bool node2vec : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig15/") + (node2vec ? "Node2Vec/" : "MetaPath/") +
              name).c_str(),
          [d, node2vec](benchmark::State& s) { LatencyBench(s, d, node2vec); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 15: per-query latency quartiles in microseconds "
      "(paper: LightRW lower and tighter than ThunderRW)");
  const std::vector<int> widths = {10, 10, 12, 10, 10, 10, 10, 12};
  PrintRow({"dataset", "app", "system", "min", "q1", "median", "q3", "max"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, row.app, row.system, FormatDouble(row.min_us, 1),
              FormatDouble(row.q1_us, 1), FormatDouble(row.median_us, 1),
              FormatDouble(row.q3_us, 1), FormatDouble(row.max_us, 1)},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
