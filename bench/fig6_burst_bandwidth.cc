// Reproduces paper Fig. 6: DRAM channel bandwidth and the ratio of valid
// data as a function of (fixed) burst length, for MetaPath's access
// pattern on liveJournal.
//
// Paper result: bandwidth rises with burst length and peaks at 17.57 GB/s;
// the valid-data ratio is highest at burst length 1 and decays with longer
// fixed bursts because adjacency lists rarely fill a long burst.

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "hwsim/dram.h"
#include "lightrw/burst_engine.h"
#include "lightrw/functional_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  uint32_t burst_beats = 0;
  double bandwidth_gbs = 0.0;
  double valid_ratio = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

// Degrees of the vertices actually expanded by a MetaPath run on LJ — the
// request-size distribution the burst engine sees.
const std::vector<uint32_t>& VisitedDegrees() {
  static auto* degrees = new std::vector<uint32_t>([] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const auto app = MakeMetaPath(g);
    core::FunctionalEngine engine(&g, app.get(), DefaultAccelConfig());
    const auto queries = StandardQueries(g, kMetaPathLength);
    baseline::WalkOutput output;
    engine.Run(queries, &output);
    std::vector<uint32_t> degrees;
    degrees.reserve(output.vertices.size());
    for (size_t p = 0; p < output.num_paths(); ++p) {
      const auto path = output.Path(p);
      // Every path vertex except the last is expanded (its adjacency is
      // streamed from DRAM).
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        degrees.push_back(g.Degree(path[i]));
      }
    }
    return degrees;
  }());
  return *degrees;
}

void BurstLengthBench(benchmark::State& state) {
  const uint32_t beats = static_cast<uint32_t>(state.range(0));
  hwsim::DramChannel channel{hwsim::DramConfig{}};

  Row row;
  row.burst_beats = beats;
  row.bandwidth_gbs = channel.SteadyStateBandwidth(beats) / 1e9;

  for (auto _ : state) {
    // Fixed burst length: every adjacency fetch is rounded up to whole
    // bursts of `beats` bus words.
    uint64_t requested = 0;
    uint64_t loaded = 0;
    const core::BurstStrategy fixed{beats, 0};
    for (const uint32_t degree : VisitedDegrees()) {
      const uint64_t bytes =
          static_cast<uint64_t>(degree) * graph::kBytesPerEdgeRecord;
      const core::BurstPlan plan =
          core::PlanBursts(bytes, fixed, channel.config().bus_bytes);
      requested += bytes;
      loaded += plan.loaded_bytes;
    }
    row.valid_ratio =
        loaded == 0 ? 1.0 : static_cast<double>(requested) / loaded;
  }
  state.counters["bandwidth_GBs"] = row.bandwidth_gbs;
  state.counters["valid_ratio"] = row.valid_ratio;
  Rows().push_back(row);
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 6: bandwidth vs burst length and ratio of valid data "
      "(paper: peak 17.57 GB/s; valid ratio highest at burst length 1)");
  const std::vector<int> widths = {14, 18, 14};
  PrintRow({"burst length", "bandwidth GB/s", "valid ratio"}, widths);
  for (const Row& row : Rows()) {
    PrintRow({std::to_string(row.burst_beats),
              FormatDouble(row.bandwidth_gbs), FormatDouble(row.valid_ratio)},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("burst_beats", static_cast<uint64_t>(row.burst_beats));
    r.Set("bandwidth_gbs", row.bandwidth_gbs);
    r.Set("valid_ratio", row.valid_ratio);
    rows.Append(std::move(r));
  }
  WriteBenchJson("fig6_burst_bandwidth", std::move(rows));
}

BENCHMARK(BurstLengthBench)
    ->ArgName("beats")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
