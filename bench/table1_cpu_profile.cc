// Reproduces paper Table 1: top-down profiling of the CPU baseline on
// MetaPath and Node2Vec over liveJournal and uk-2002.
//
// vTune is unavailable here; the engine's LLC model and cycle cost model
// produce the same three metrics (see baseline/engine.cc). Paper values:
// LLC miss 58.2-76.9%, memory bound 31.2-59.9%, retiring 8.2-33.6%, with
// Node2Vec less memory bound and higher retiring than MetaPath.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string app;
  std::string dataset;
  double llc_miss = 0.0;
  double memory_bound = 0.0;
  double retiring = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void ProfileBench(benchmark::State& state, graph::Dataset dataset,
                  bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const auto queries =
      StandardQueries(g, node2vec ? kNode2VecLength : kMetaPathLength);
  baseline::BaselineConfig config;
  config.collect_profile = true;
  // Scale the modeled LLC with the graph stand-ins so capacity pressure
  // matches the paper's full-scale setup (35.75 MB against tens of GB of
  // graph data).
  config.llc_bytes =
      std::max<uint64_t>(1ull << 14, (32ull << 20) >> ScaleShift());
  baseline::BaselineEngine engine(&g, app.get(), config);

  Row row;
  row.app = app->name();
  row.dataset = graph::GetDatasetInfo(dataset).full_name;
  for (auto _ : state) {
    const auto stats = engine.Run(queries);
    row.llc_miss = stats.profile.LlcMissRatio();
    row.memory_bound = stats.profile.memory_bound;
    row.retiring = stats.profile.retiring_ratio;
  }
  state.counters["llc_miss_pct"] = row.llc_miss * 100.0;
  state.counters["memory_bound_pct"] = row.memory_bound * 100.0;
  state.counters["retiring_pct"] = row.retiring * 100.0;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d :
       {graph::Dataset::kLiveJournal, graph::Dataset::kUk2002}) {
    const char* name = graph::GetDatasetInfo(d).name;
    for (const bool node2vec : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("Table1/") + (node2vec ? "Node2Vec/" : "MetaPath/") +
              name).c_str(),
          [d, node2vec](benchmark::State& s) { ProfileBench(s, d, node2vec); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Table 1: CPU GDRW profiling proxies (paper: LLC miss 58-77%, "
      "memory bound 31-60%, retiring 8-34%)");
  const std::vector<int> widths = {10, 14, 12, 16, 12};
  PrintRow({"app", "graph", "LLC miss", "memory bound", "retiring"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.app, row.dataset,
              FormatDouble(row.llc_miss * 100, 1) + "%",
              FormatDouble(row.memory_bound * 100, 1) + "%",
              FormatDouble(row.retiring * 100, 1) + "%"},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
