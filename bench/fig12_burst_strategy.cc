// Reproduces paper Fig. 12: throughput of dynamic burst strategies
// b1+b{2..64} relative to the b1+b0 baseline (all single-beat bursts) for
// MetaPath on RMAT graphs and on the real-graph stand-ins.
//
// Paper result: b1+b32 is the best overall (up to 4.24x on synthetic
// graphs, up to 3.26x on real graphs); b1+b2 can be the worst because tiny
// long bursts do not amortize the burst plan overhead.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/generators.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

constexpr uint32_t kLongBeats[] = {0, 2, 4, 8, 16, 32, 64};

struct Row {
  std::string graph;
  double speedup[7] = {};  // indexed like kLongBeats; [0] is baseline 1.0
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

uint64_t RunCycles(const graph::CsrGraph& g, uint32_t long_beats) {
  const auto app = MakeMetaPath(g);
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.num_instances = 1;
  config.burst = core::BurstStrategy{1, long_beats};
  core::CycleEngine engine(&g, app.get(), config);
  const auto queries = StandardQueries(g, kMetaPathLength);
  return engine.Run(queries).cycles;
}

void StrategyBench(benchmark::State& state, const std::string& name,
                   const graph::CsrGraph& g) {
  Row row;
  row.graph = name;
  for (auto _ : state) {
    const uint64_t base = RunCycles(g, 0);
    for (size_t i = 0; i < std::size(kLongBeats); ++i) {
      const uint64_t cycles = i == 0 ? base : RunCycles(g, kLongBeats[i]);
      row.speedup[i] = static_cast<double>(base) / cycles;
    }
  }
  for (size_t i = 1; i < std::size(kLongBeats); ++i) {
    state.counters["b1+b" + std::to_string(kLongBeats[i])] = row.speedup[i];
  }
  Rows().push_back(row);
}

void RegisterAll() {
  // Synthetic RMAT graphs (paper uses rmat-18..22; scaled down here).
  for (uint32_t scale : {12u, 14u, 16u, 18u}) {
    graph::RmatOptions options;
    options.scale = scale;
    options.edge_factor = 8;
    options.seed = kBenchSeed;
    auto* g = new graph::CsrGraph(GenerateRmat(options));
    benchmark::RegisterBenchmark(
        ("Fig12/rmat" + std::to_string(scale)).c_str(),
        [g, scale](benchmark::State& s) {
          StrategyBench(s, "rmat-" + std::to_string(scale), *g);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    benchmark::RegisterBenchmark(
        (std::string("Fig12/") + name).c_str(),
        [d, name](benchmark::State& s) { StrategyBench(s, name, StandIn(d)); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 12: dynamic burst strategy speedup over b1+b0 on MetaPath "
      "(paper: b1+b32 best, up to 4.24x synthetic / 3.26x real)");
  std::vector<int> widths = {12};
  std::vector<std::string> header = {"graph"};
  for (size_t i = 0; i < std::size(kLongBeats); ++i) {
    header.push_back("b1+b" + std::to_string(kLongBeats[i]));
    widths.push_back(9);
  }
  PrintRow(header, widths);
  for (const Row& row : Rows()) {
    std::vector<std::string> cells = {row.graph};
    for (size_t i = 0; i < std::size(kLongBeats); ++i) {
      cells.push_back(FormatDouble(row.speedup[i]));
    }
    PrintRow(cells, widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
