// Extension experiment: design-space sensitivity of the modeled
// accelerator, covering the ablations DESIGN.md calls out —
//   (a) WRS sampler lanes k (diminishing returns past the line rate),
//   (b) degree-aware cache depth,
//   (c) Node2Vec previous-adjacency buffer capacity,
//   (d) number of instances / DRAM channels.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string sweep;
  uint64_t value = 0;
  double msteps = 0.0;
  double extra = 0.0;  // sweep-specific: miss ratio or refetch count
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

core::AcceleratorConfig BaseConfig() {
  core::AcceleratorConfig config = DefaultAccelConfig();
  config.num_instances = 1;
  return config;
}

void LaneSweep(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kOrkut);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  core::AcceleratorConfig config = BaseConfig();
  config.sampler_parallelism = k;
  Row row{"sampler_lanes", k, 0.0, 0.0};
  for (auto _ : state) {
    core::CycleEngine engine(&g, app.get(), config);
    row.msteps = engine.Run(queries).StepsPerSecond() / 1e6;
  }
  state.counters["Msteps"] = row.msteps;
  Rows().push_back(row);
}

void CacheSweep(benchmark::State& state) {
  const uint32_t entries = static_cast<uint32_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  core::AcceleratorConfig config = BaseConfig();
  config.cache_entries = entries;
  Row row{"cache_entries", entries, 0.0, 0.0};
  for (auto _ : state) {
    core::CycleEngine engine(&g, app.get(), config);
    const auto stats = engine.Run(queries);
    row.msteps = stats.StepsPerSecond() / 1e6;
    row.extra = stats.cache.MissRatio();
  }
  state.counters["Msteps"] = row.msteps;
  state.counters["miss_ratio"] = row.extra;
  Rows().push_back(row);
}

void BufferSweep(benchmark::State& state) {
  const uint32_t edges = static_cast<uint32_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kOrkut);
  const auto app = MakeNode2Vec();
  const auto queries = StandardQueries(g, /*length=*/20);
  core::AcceleratorConfig config = BaseConfig();
  config.prev_neighbor_buffer_edges = edges;
  Row row{"prev_buffer_edges", edges, 0.0, 0.0};
  for (auto _ : state) {
    core::CycleEngine engine(&g, app.get(), config);
    const auto stats = engine.Run(queries);
    row.msteps = stats.StepsPerSecond() / 1e6;
    row.extra = static_cast<double>(stats.prev_refetches);
  }
  state.counters["Msteps"] = row.msteps;
  state.counters["refetches"] = row.extra;
  Rows().push_back(row);
}

void InstanceSweep(benchmark::State& state) {
  const uint32_t instances = static_cast<uint32_t>(state.range(0));
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  core::AcceleratorConfig config = BaseConfig();
  config.num_instances = instances;
  Row row{"instances", instances, 0.0, 0.0};
  for (auto _ : state) {
    core::CycleEngine engine(&g, app.get(), config);
    row.msteps = engine.Run(queries).StepsPerSecond() / 1e6;
  }
  state.counters["Msteps"] = row.msteps;
  Rows().push_back(row);
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: accelerator design-space sensitivity "
      "(lanes k, cache depth, Node2Vec buffer, instances)");
  const std::vector<int> widths = {20, 12, 12, 16};
  PrintRow({"sweep", "value", "Msteps/s", "extra"}, widths);
  for (const Row& row : Rows()) {
    PrintRow({row.sweep, std::to_string(row.value),
              FormatDouble(row.msteps), FormatDouble(row.extra, 3)},
             widths);
  }
}

BENCHMARK(LaneSweep)->ArgName("k")->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(CacheSweep)->ArgName("entries")->Arg(8)->Arg(32)->Arg(128)
    ->Arg(512)->Arg(2048)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BufferSweep)->ArgName("edges")->Arg(16)->Arg(64)->Arg(256)
    ->Arg(1024)->Arg(65536)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(InstanceSweep)->ArgName("instances")->Arg(1)->Arg(2)->Arg(4)
    ->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
