// Reproduces paper Fig. 14: end-to-end speedup of LightRW over the
// ThunderRW-style CPU baseline on MetaPath and Node2Vec across the five
// datasets, plus the "ThunderRW w/PWRS" variant and the §3.2 observation
// that plain WRS is a poor fit for CPUs.
//
// Paper result: LightRW wins 6.27x-9.55x on MetaPath and 5.17x-9.10x on
// Node2Vec; PWRS-on-CPU helps on some graphs (1.84x on OR) and hurts on
// others; CPU WRS is ~8.2x slower than ITS.

#include <benchmark/benchmark.h>

#include "baseline/engine.h"
#include "bench_util.h"
#include "lightrw/cycle_engine.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  std::string app;
  double cpu_steps_s = 0.0;
  double cpu_pwrs_steps_s = 0.0;
  double accel_steps_s = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

double RunCpu(const graph::CsrGraph& g, const apps::WalkApp& app,
              std::span<const apps::WalkQuery> queries,
              sampling::SamplerKind sampler) {
  baseline::BaselineConfig config;
  config.sampler = sampler;
  baseline::BaselineEngine engine(&g, &app, config);
  const auto stats = engine.Run(queries);
  return stats.StepsPerSecond();
}

double RunAccel(const graph::CsrGraph& g, const apps::WalkApp& app,
                std::span<const apps::WalkQuery> queries) {
  core::CycleEngine engine(&g, &app, DefaultAccelConfig());
  return engine.Run(queries).StepsPerSecond();
}

void SpeedupBench(benchmark::State& state, graph::Dataset dataset,
                  bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const auto queries =
      StandardQueries(g, node2vec ? kNode2VecLength : kMetaPathLength);

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  row.app = app->name();
  for (auto _ : state) {
    row.cpu_steps_s = RunCpu(g, *app, queries,
                             sampling::SamplerKind::kInverseTransform);
    row.cpu_pwrs_steps_s =
        RunCpu(g, *app, queries, sampling::SamplerKind::kParallelWrs);
    row.accel_steps_s = RunAccel(g, *app, queries);
  }
  state.counters["cpu_Msteps"] = row.cpu_steps_s / 1e6;
  state.counters["pwrs_Msteps"] = row.cpu_pwrs_steps_s / 1e6;
  state.counters["lightrw_Msteps"] = row.accel_steps_s / 1e6;
  state.counters["speedup"] = row.accel_steps_s / row.cpu_steps_s;
  Rows().push_back(row);
}

void WrsOnCpuBench(benchmark::State& state) {
  // §3.2: replacing ITS with sequential WRS in the CPU engine costs the
  // per-edge random number generation (the paper observed 8.2x).
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const auto app = MakeMetaPath(g);
  const auto queries = StandardQueries(g, kMetaPathLength);
  for (auto _ : state) {
    const double its = RunCpu(g, *app, queries,
                              sampling::SamplerKind::kInverseTransform);
    const double wrs =
        RunCpu(g, *app, queries, sampling::SamplerKind::kReservoir);
    state.counters["its_over_wrs"] = its / wrs;
  }
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    benchmark::RegisterBenchmark(
        (std::string("Fig14/MetaPath/") + name).c_str(),
        [d](benchmark::State& s) { SpeedupBench(s, d, false); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("Fig14/Node2Vec/") + name).c_str(),
        [d](benchmark::State& s) { SpeedupBench(s, d, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RegisterBenchmark("Fig14/WrsOnCpu/LJ", WrsOnCpuBench)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

void PrintSummary() {
  PrintReportHeader(
      "Fig. 14: LightRW vs ThunderRW speedup (paper: 6.27-9.55x MetaPath, "
      "5.17-9.10x Node2Vec)");
  const std::vector<int> widths = {10, 10, 14, 16, 16, 10, 12};
  PrintRow({"dataset", "app", "cpu Mstep/s", "cpu+PWRS Mst/s",
            "LightRW Mst/s", "speedup", "PWRS effect"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, row.app, FormatDouble(row.cpu_steps_s / 1e6),
              FormatDouble(row.cpu_pwrs_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / 1e6),
              FormatDouble(row.accel_steps_s / row.cpu_steps_s) + "x",
              FormatDouble(row.cpu_pwrs_steps_s / row.cpu_steps_s) + "x"},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("dataset", row.dataset);
    r.Set("app", row.app);
    r.Set("cpu_steps_per_second", row.cpu_steps_s);
    r.Set("cpu_pwrs_steps_per_second", row.cpu_pwrs_steps_s);
    r.Set("lightrw_steps_per_second", row.accel_steps_s);
    r.Set("speedup", row.accel_steps_s / row.cpu_steps_s);
    rows.Append(std::move(r));
  }
  WriteBenchJson("fig14_speedup", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
