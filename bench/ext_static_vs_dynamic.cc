// Extension experiment: the static/dynamic gap that motivates the paper
// (§2.1). Static random walks can precompute per-edge transition
// probabilities offline (a per-vertex alias index) and then step in O(1);
// dynamic walks must recompute weights every step. This bench quantifies
// that gap on the CPU: a precomputed-index walker vs the per-step ITS
// engine on the same first-order workload, plus the index build cost.

#include <benchmark/benchmark.h>

#include "apps/walk_app.h"
#include "baseline/engine.h"
#include "baseline/static_index.h"
#include "bench_util.h"
#include "common/timer.h"
#include "rng/rng.h"
#include "sampling/sampler.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  double static_msteps = 0.0;
  double dynamic_msteps = 0.0;
  double index_build_s = 0.0;
  uint64_t index_mb = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

// O(1)-per-step walker over the precomputed index.
double RunStaticWalks(const graph::CsrGraph& g,
                      const baseline::StaticWalkIndex& index,
                      std::span<const apps::WalkQuery> queries) {
  rng::Xoshiro256StarStar gen(kBenchSeed);
  WallTimer timer;
  uint64_t steps = 0;
  for (const auto& q : queries) {
    graph::VertexId curr = q.start;
    for (uint32_t s = 0; s < q.length; ++s) {
      const size_t slot = index.Sample(curr, gen.Next(), gen.Next32());
      if (slot == sampling::kNoSample) {
        break;
      }
      curr = g.Neighbors(curr)[slot];
      ++steps;
    }
  }
  return static_cast<double>(steps) / timer.ElapsedSeconds();
}

void StaticVsDynamicBench(benchmark::State& state, graph::Dataset dataset) {
  const graph::CsrGraph& g = StandIn(dataset);
  apps::StaticWalkApp app;
  const auto queries = StandardQueries(g, /*length=*/20);

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  for (auto _ : state) {
    WallTimer build_timer;
    baseline::StaticWalkIndex index(g);
    row.index_build_s = build_timer.ElapsedSeconds();
    row.index_mb = index.MemoryBytes() >> 20;
    row.static_msteps = RunStaticWalks(g, index, queries) / 1e6;

    baseline::BaselineEngine dynamic(&g, &app, baseline::BaselineConfig{});
    row.dynamic_msteps = dynamic.Run(queries).StepsPerSecond() / 1e6;
  }
  state.counters["static_Msteps"] = row.static_msteps;
  state.counters["dynamic_Msteps"] = row.dynamic_msteps;
  state.counters["gap"] = row.static_msteps / row.dynamic_msteps;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    benchmark::RegisterBenchmark(
        (std::string("ExtStatic/") + graph::GetDatasetInfo(d).name).c_str(),
        [d](benchmark::State& s) { StaticVsDynamicBench(s, d); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: static (precomputed index) vs dynamic per-step sampling "
      "on CPU — the gap that motivates accelerating GDRWs");
  const std::vector<int> widths = {10, 16, 16, 10, 14, 12};
  PrintRow({"dataset", "static Mst/s", "dynamic Mst/s", "gap",
            "index build s", "index MB"},
           widths);
  for (const Row& row : Rows()) {
    PrintRow({row.dataset, FormatDouble(row.static_msteps),
              FormatDouble(row.dynamic_msteps),
              FormatDouble(row.static_msteps / row.dynamic_msteps) + "x",
              FormatDouble(row.index_build_s, 3),
              std::to_string(row.index_mb)},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
