#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/check.h"
#include "common/sim_thread_pool.h"
#include "obs/trace.h"

namespace lightrw::bench {

namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

uint32_t ScaleShift() {
  static const uint32_t shift =
      static_cast<uint32_t>(EnvOr("LIGHTRW_SCALE_SHIFT", 7));
  return shift;
}

size_t MaxQueries() {
  static const size_t cap =
      static_cast<size_t>(EnvOr("LIGHTRW_MAX_QUERIES", 8192));
  return cap;
}

uint32_t SimThreads() { return SimThreadPool::DefaultThreads(); }

const graph::CsrGraph& StandIn(graph::Dataset dataset) {
  static std::map<graph::Dataset, graph::CsrGraph>& cache =
      *new std::map<graph::Dataset, graph::CsrGraph>();
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    it = cache
             .emplace(dataset, graph::MakeDatasetStandIn(
                                   dataset, ScaleShift(), kBenchSeed))
             .first;
  }
  return it->second;
}

std::vector<apps::WalkQuery> StandardQueries(const graph::CsrGraph& graph,
                                             uint32_t length, size_t cap) {
  if (cap == 0) {
    cap = MaxQueries();
  }
  return apps::MakeVertexQueries(graph, length, kBenchSeed ^ length, cap);
}

std::vector<apps::WalkQuery> RepeatedQueries(const graph::CsrGraph& graph,
                                             uint32_t length, size_t count) {
  const auto base =
      apps::MakeVertexQueries(graph, length, kBenchSeed ^ length);
  LIGHTRW_CHECK(!base.empty());
  std::vector<apps::WalkQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(base[i % base.size()]);
  }
  return queries;
}

std::unique_ptr<apps::WalkApp> MakeMetaPath(const graph::CsrGraph& graph) {
  return std::make_unique<apps::MetaPathApp>(
      apps::MakeRandomRelationPath(graph, kMetaPathLength, kBenchSeed));
}

std::unique_ptr<apps::WalkApp> MakeNode2Vec() {
  return std::make_unique<apps::Node2VecApp>(kNode2VecP, kNode2VecQ);
}

core::AcceleratorConfig DefaultAccelConfig() {
  core::AcceleratorConfig config;
  config.sampler_parallelism = 16;
  config.burst = core::BurstStrategy{1, 32};
  config.cache_kind = core::CacheKind::kDegreeAware;
  // The on-chip structures shrink with the dataset stand-ins so their
  // capacity relative to the graphs matches the paper's full-scale setup
  // (2^12 cache entries against million-vertex graphs).
  config.cache_entries = std::max<uint32_t>(16, 4096u >> ScaleShift());
  config.prev_neighbor_buffer_edges =
      std::max<uint32_t>(64, 65536u >> ScaleShift());
  config.num_instances = 4;
  config.seed = kBenchSeed;
  return config;
}

void PrintReportHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("(dataset stand-ins scaled by 2^-%u, query cap %zu; "
              "LightRW times are simulated cycles at %.0f MHz)\n",
              ScaleShift(), MaxQueries(), 300.0);
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  LIGHTRW_CHECK_EQ(cells.size(), widths.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

obs::Json BenchContext() {
  obs::Json context = obs::Json::MakeObject();
  context.Set("scale_shift", static_cast<uint64_t>(ScaleShift()));
  context.Set("max_queries", static_cast<uint64_t>(MaxQueries()));
  context.Set("seed", kBenchSeed);
  // Provenance only: rows must not move with the thread count (the CI
  // determinism gate diffs them across 1 vs N threads).
  context.Set("sim_threads", static_cast<uint64_t>(SimThreads()));
  return context;
}

void WriteBenchJson(const std::string& name, obs::Json rows) {
  const char* dir = std::getenv("LIGHTRW_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  path += "/BENCH_" + name + ".json";

  obs::Json record = obs::Json::MakeObject();
  record.Set("bench", name);
  record.Set("context", BenchContext());
  record.Set("rows", std::move(rows));
  const Status written =
      obs::WriteTextFile(record.Dump(/*indent=*/2) + "\n", path);
  if (!written.ok()) {
    std::fprintf(stderr, "WriteBenchJson: %s\n",
                 written.ToString().c_str());
    return;
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace lightrw::bench
