// Extension experiment (observability): per-component latency
// attribution under load and faults. Sweeps offered load (as a multiple
// of calibrated batch capacity) against the uncorrectable-ECC fault
// rate, records every query's span tree, and reports where the cycles
// of breached queries went: per-component p99 over all queries plus the
// dominant-component tally of the breach report, with the number of SLO
// burn-rate alert firings.
//
// Expected shape: fault-free overload is dominated by queue_wait (the
// admission queue is the bottleneck); injected DRAM faults shift the
// dominant component toward dram_fetch/backoff (failed walks burn their
// deadline in retries); burn alerts fire only in the overloaded or
// faulty cells.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "distributed/dist_engine.h"
#include "distributed/partition.h"
#include "obs/critical_path.h"
#include "obs/span.h"
#include "service/walk_service.h"

namespace lightrw::bench {
namespace {

using distributed::DistributedEngine;
using distributed::MakePartition;
using distributed::Partition;
using distributed::PartitionStrategy;
using obs::AnalyzeCriticalPaths;
using obs::AttributionReport;
using obs::BurnRateConfig;
using obs::ComputeBurnAlerts;
using obs::SpanRecorder;
using service::ServiceConfig;
using service::ServiceRunStats;
using service::WalkService;

constexpr uint32_t kBoards = 2;
constexpr uint32_t kInflightPerBoard = 8;
constexpr uint32_t kWalkLength = 16;
constexpr uint64_t kNumQueries = 512;

struct Row {
  double load_multiple = 0.0;
  double fault_rate = 0.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t violations = 0;
  uint64_t breached = 0;
  uint64_t analyzed = 0;
  uint64_t burn_alert_firings = 0;
  std::array<uint64_t, obs::kNumComponents> dominant_counts{};
  std::array<double, obs::kNumComponents> p99_cycles{};
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

ServiceConfig ServiceBase() {
  ServiceConfig config;
  config.cluster.board = DefaultAccelConfig();
  config.cluster.board.num_instances = 1;
  config.cluster.inflight_walkers_per_board = kInflightPerBoard;
  config.queue_capacity = 8;
  config.retry_budget = 1;
  config.retry_backoff_cycles = 256;
  config.arrivals.seed = kBenchSeed;
  config.arrivals.num_queries = kNumQueries;
  config.arrivals.walk_length = kWalkLength;
  return config;
}

// Closed-loop batch capacity of the same cluster (queries per 1024
// cycles), the reference the load multiples are expressed against.
double CapacityPerKcycle() {
  static double capacity = [] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const apps::StaticWalkApp app;
    const Partition partition =
        MakePartition(g, kBoards, PartitionStrategy::kHash);
    const ServiceConfig base = ServiceBase();
    DistributedEngine engine(&g, &app, &partition, base.cluster);
    const auto queries = StandardQueries(g, kWalkLength, kNumQueries);
    const auto stats = engine.Run(queries).value();
    return static_cast<double>(stats.queries) * 1024.0 /
           static_cast<double>(stats.cycles);
  }();
  return capacity;
}

// Deadline just above the unloaded p99: queueing or retries make walks
// late, so attribution has breaches to explain in the loaded cells.
uint64_t CalibratedDeadline() {
  static uint64_t deadline = [] {
    const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
    const apps::StaticWalkApp app;
    const Partition partition =
        MakePartition(g, kBoards, PartitionStrategy::kHash);
    ServiceConfig config = ServiceBase();
    config.arrivals.rate_per_kcycle = 0.25 * CapacityPerKcycle();
    WalkService walk_service(&g, &app, &partition, config);
    ServiceRunStats stats = walk_service.Run().value();
    return static_cast<uint64_t>(1.3 *
                                 stats.latency_cycles.Quantile(0.99));
  }();
  return deadline;
}

void LatencyAttributionBench(benchmark::State& state, double load_multiple,
                             double fault_rate) {
  const graph::CsrGraph& g = StandIn(graph::Dataset::kLiveJournal);
  const apps::StaticWalkApp app;
  const Partition partition =
      MakePartition(g, kBoards, PartitionStrategy::kHash);

  ServiceConfig config = ServiceBase();
  config.arrivals.rate_per_kcycle = load_multiple * CapacityPerKcycle();
  config.arrivals.deadline_cycles = CalibratedDeadline();
  if (fault_rate > 0.0) {
    config.cluster.board.faults.enabled = true;
    config.cluster.board.faults.seed = kBenchSeed;
    config.cluster.board.faults.dram_uncorrectable_rate = fault_rate;
    // First uncorrectable hit fails the access (and so the walk): the
    // sweep is about where failed attempts spend their latency, not
    // about the ECC retry ladder.
    config.cluster.board.faults.max_dram_retries = 0;
  }

  Row row;
  row.load_multiple = load_multiple;
  row.fault_rate = fault_rate;
  for (auto _ : state) {
    SpanRecorder spans;
    config.cluster.board.spans = &spans;
    WalkService walk_service(&g, &app, &partition, config);
    const auto result = walk_service.Run();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const ServiceRunStats& stats = *result;
    row.offered = stats.offered;
    row.completed = stats.completed;
    row.shed = stats.Shed();
    row.failed = stats.failed;
    row.violations = stats.deadline_violations;

    const AttributionReport report = AnalyzeCriticalPaths(spans);
    row.breached = report.breached_count;
    row.analyzed = report.queries_analyzed;
    row.dominant_counts = report.dominant_counts;
    for (size_t c = 0; c < obs::kNumComponents; ++c) {
      if (report.component_cycles[c].count() > 0) {
        row.p99_cycles[c] = report.component_cycles[c].Quantile(0.99);
      }
    }
    BurnRateConfig burn;
    burn.budget = 0.05;
    for (const auto& alert : ComputeBurnAlerts(spans.Summaries(), burn)) {
      row.burn_alert_firings += alert.firing ? 1 : 0;
    }
  }
  state.counters["breached"] = static_cast<double>(row.breached);
  state.counters["burn_alert_firings"] =
      static_cast<double>(row.burn_alert_firings);
  Rows().push_back(row);
}

void RegisterAll() {
  const double kMultiples[] = {0.5, 1.0, 2.0};
  const double kFaultRates[] = {0.0, 2e-3};
  for (const double multiple : kMultiples) {
    for (const double fault_rate : kFaultRates) {
      const std::string name =
          "ExtLatencyAttribution/load:" + FormatDouble(multiple, 2) +
          "/faults:" + FormatDouble(fault_rate, 4);
      benchmark::RegisterBenchmark(
          name.c_str(), [multiple, fault_rate](benchmark::State& st) {
            LatencyAttributionBench(st, multiple, fault_rate);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Extension: latency attribution (offered load x fault rate; "
      "dominant components of breached queries and per-component p99)");
  const std::vector<int> widths = {6, 8, 6, 6, 6, 6, 8, 22, 8};
  PrintRow({"load", "faults", "done", "shed", "fail", "late", "breached",
            "top dominant", "alerts"},
           widths);
  for (const Row& row : Rows()) {
    size_t top = 0;
    for (size_t c = 1; c < obs::kNumComponents; ++c) {
      if (row.dominant_counts[c] > row.dominant_counts[top]) {
        top = c;
      }
    }
    const std::string top_label =
        row.breached == 0 ? "-"
                          : std::string(obs::ComponentName(top)) + " x" +
                                std::to_string(row.dominant_counts[top]);
    PrintRow({FormatDouble(row.load_multiple, 2),
              FormatDouble(row.fault_rate, 4), std::to_string(row.completed),
              std::to_string(row.shed), std::to_string(row.failed),
              std::to_string(row.violations), std::to_string(row.breached),
              top_label, std::to_string(row.burn_alert_firings)},
             widths);
  }

  obs::Json rows = obs::Json::MakeArray();
  for (const Row& row : Rows()) {
    obs::Json r = obs::Json::MakeObject();
    r.Set("load_multiple", row.load_multiple);
    r.Set("fault_rate", row.fault_rate);
    r.Set("offered", row.offered);
    r.Set("completed", row.completed);
    r.Set("shed", row.shed);
    r.Set("failed", row.failed);
    r.Set("deadline_violations", row.violations);
    r.Set("queries_analyzed", row.analyzed);
    r.Set("breached", row.breached);
    r.Set("burn_alert_firings", row.burn_alert_firings);
    for (size_t c = 0; c < obs::kNumComponents; ++c) {
      r.Set(std::string("dominant_") + obs::ComponentName(c),
            row.dominant_counts[c]);
    }
    for (size_t c = 0; c < obs::kNumComponents; ++c) {
      r.Set(std::string("p99_") + obs::ComponentName(c) + "_cycles",
            row.p99_cycles[c]);
    }
    rows.Append(std::move(r));
  }
  WriteBenchJson("ext_latency_attribution", std::move(rows));
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
