// Reproduces paper Table 4: the proportion of PCIe data transfer time in
// the end-to-end execution time of MetaPath and Node2Vec.
//
// The kernel is simulated with a capped query count and extrapolated
// linearly to the paper's query count (= number of non-isolated vertices),
// as are the query/result transfer bytes; the graph image transfer is
// independent of the query count.
//
// Paper result: MetaPath 15.3-33.5% (short walks barely amortize the
// transfer), Node2Vec 0.07-1.10% (80-step walks dwarf it).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lightrw/cycle_engine.h"
#include "lightrw/platform_models.h"

namespace lightrw::bench {
namespace {

struct Row {
  std::string dataset;
  std::string app;
  double pcie_share = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void PcieBench(benchmark::State& state, graph::Dataset dataset,
               bool node2vec) {
  const graph::CsrGraph& g = StandIn(dataset);
  const auto app = node2vec ? MakeNode2Vec() : MakeMetaPath(g);
  const uint32_t length = node2vec ? kNode2VecLength : kMetaPathLength;
  const auto queries = StandardQueries(g, length);
  const core::AcceleratorConfig config = DefaultAccelConfig();

  Row row;
  row.dataset = graph::GetDatasetInfo(dataset).name;
  row.app = app->name();
  for (auto _ : state) {
    core::CycleEngine accel(&g, app.get(), config);
    const auto stats = accel.Run(queries);

    // Extrapolate kernel time from the capped query set to the paper's
    // one-query-per-vertex setting.
    const uint64_t full_queries = g.CountNonIsolatedVertices();
    const double scale =
        static_cast<double>(full_queries) / static_cast<double>(queries.size());
    const double kernel_seconds = stats.seconds * scale;

    core::PcieModel pcie;
    const double graph_seconds =
        pcie.TransferSeconds(g.ModeledByteSize() * config.num_instances);
    const uint64_t query_result_bytes =
        full_queries * 8 +
        full_queries * (static_cast<uint64_t>(length) + 1) * 4;
    const double io_seconds =
        graph_seconds + pcie.TransferSeconds(query_result_bytes);
    row.pcie_share = io_seconds / (io_seconds + kernel_seconds);
  }
  state.counters["pcie_pct"] = row.pcie_share * 100.0;
  Rows().push_back(row);
}

void RegisterAll() {
  for (const graph::Dataset d : graph::kAllDatasets) {
    const char* name = graph::GetDatasetInfo(d).name;
    for (const bool node2vec : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("Table4/") + (node2vec ? "Node2Vec/" : "MetaPath/") +
              name).c_str(),
          [d, node2vec](benchmark::State& s) { PcieBench(s, d, node2vec); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintSummary() {
  PrintReportHeader(
      "Table 4: PCIe transfer share of end-to-end time "
      "(paper: MetaPath 15.3-33.5%, Node2Vec 0.07-1.10%)");
  const std::vector<int> widths = {10, 12, 12};
  PrintRow({"app", "dataset", "PCIe share"}, widths);
  for (const Row& row : Rows()) {
    PrintRow({row.app, row.dataset,
              FormatDouble(row.pcie_share * 100, 2) + "%"},
             widths);
  }
}

}  // namespace
}  // namespace lightrw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lightrw::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  lightrw::bench::PrintSummary();
  benchmark::Shutdown();
  return 0;
}
