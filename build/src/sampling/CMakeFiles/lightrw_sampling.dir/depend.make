# Empty dependencies file for lightrw_sampling.
# This may be replaced when dependencies are built.
