file(REMOVE_RECURSE
  "liblightrw_sampling.a"
)
