file(REMOVE_RECURSE
  "CMakeFiles/lightrw_sampling.dir/alias.cc.o"
  "CMakeFiles/lightrw_sampling.dir/alias.cc.o.d"
  "CMakeFiles/lightrw_sampling.dir/inverse_transform.cc.o"
  "CMakeFiles/lightrw_sampling.dir/inverse_transform.cc.o.d"
  "CMakeFiles/lightrw_sampling.dir/parallel_wrs.cc.o"
  "CMakeFiles/lightrw_sampling.dir/parallel_wrs.cc.o.d"
  "liblightrw_sampling.a"
  "liblightrw_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
