
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/alias.cc" "src/sampling/CMakeFiles/lightrw_sampling.dir/alias.cc.o" "gcc" "src/sampling/CMakeFiles/lightrw_sampling.dir/alias.cc.o.d"
  "/root/repo/src/sampling/inverse_transform.cc" "src/sampling/CMakeFiles/lightrw_sampling.dir/inverse_transform.cc.o" "gcc" "src/sampling/CMakeFiles/lightrw_sampling.dir/inverse_transform.cc.o.d"
  "/root/repo/src/sampling/parallel_wrs.cc" "src/sampling/CMakeFiles/lightrw_sampling.dir/parallel_wrs.cc.o" "gcc" "src/sampling/CMakeFiles/lightrw_sampling.dir/parallel_wrs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightrw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/lightrw_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightrw_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
