file(REMOVE_RECURSE
  "liblightrw_common.a"
)
