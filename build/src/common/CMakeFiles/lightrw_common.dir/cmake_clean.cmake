file(REMOVE_RECURSE
  "CMakeFiles/lightrw_common.dir/flags.cc.o"
  "CMakeFiles/lightrw_common.dir/flags.cc.o.d"
  "CMakeFiles/lightrw_common.dir/histogram.cc.o"
  "CMakeFiles/lightrw_common.dir/histogram.cc.o.d"
  "CMakeFiles/lightrw_common.dir/status.cc.o"
  "CMakeFiles/lightrw_common.dir/status.cc.o.d"
  "liblightrw_common.a"
  "liblightrw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
