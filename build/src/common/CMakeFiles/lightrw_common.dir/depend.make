# Empty dependencies file for lightrw_common.
# This may be replaced when dependencies are built.
