# Empty dependencies file for lightrw_hwsim.
# This may be replaced when dependencies are built.
