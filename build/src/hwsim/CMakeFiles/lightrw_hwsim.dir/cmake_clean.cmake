file(REMOVE_RECURSE
  "CMakeFiles/lightrw_hwsim.dir/dram.cc.o"
  "CMakeFiles/lightrw_hwsim.dir/dram.cc.o.d"
  "liblightrw_hwsim.a"
  "liblightrw_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
