file(REMOVE_RECURSE
  "liblightrw_hwsim.a"
)
