# Empty dependencies file for lightrw_distributed.
# This may be replaced when dependencies are built.
