file(REMOVE_RECURSE
  "liblightrw_distributed.a"
)
