file(REMOVE_RECURSE
  "CMakeFiles/lightrw_distributed.dir/dist_engine.cc.o"
  "CMakeFiles/lightrw_distributed.dir/dist_engine.cc.o.d"
  "CMakeFiles/lightrw_distributed.dir/partition.cc.o"
  "CMakeFiles/lightrw_distributed.dir/partition.cc.o.d"
  "liblightrw_distributed.a"
  "liblightrw_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
