file(REMOVE_RECURSE
  "liblightrw_rng.a"
)
