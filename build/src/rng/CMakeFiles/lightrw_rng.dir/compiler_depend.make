# Empty compiler generated dependencies file for lightrw_rng.
# This may be replaced when dependencies are built.
