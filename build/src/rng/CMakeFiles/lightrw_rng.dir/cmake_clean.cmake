file(REMOVE_RECURSE
  "CMakeFiles/lightrw_rng.dir/battery.cc.o"
  "CMakeFiles/lightrw_rng.dir/battery.cc.o.d"
  "CMakeFiles/lightrw_rng.dir/rng.cc.o"
  "CMakeFiles/lightrw_rng.dir/rng.cc.o.d"
  "CMakeFiles/lightrw_rng.dir/stat_tests.cc.o"
  "CMakeFiles/lightrw_rng.dir/stat_tests.cc.o.d"
  "liblightrw_rng.a"
  "liblightrw_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
