# Empty compiler generated dependencies file for lightrw_graph.
# This may be replaced when dependencies are built.
