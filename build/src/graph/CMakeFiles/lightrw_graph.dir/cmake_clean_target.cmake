file(REMOVE_RECURSE
  "liblightrw_graph.a"
)
