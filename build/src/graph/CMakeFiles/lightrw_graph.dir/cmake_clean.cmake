file(REMOVE_RECURSE
  "CMakeFiles/lightrw_graph.dir/builder.cc.o"
  "CMakeFiles/lightrw_graph.dir/builder.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/components.cc.o"
  "CMakeFiles/lightrw_graph.dir/components.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/csr.cc.o"
  "CMakeFiles/lightrw_graph.dir/csr.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/generators.cc.o"
  "CMakeFiles/lightrw_graph.dir/generators.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/io.cc.o"
  "CMakeFiles/lightrw_graph.dir/io.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/stats.cc.o"
  "CMakeFiles/lightrw_graph.dir/stats.cc.o.d"
  "CMakeFiles/lightrw_graph.dir/transforms.cc.o"
  "CMakeFiles/lightrw_graph.dir/transforms.cc.o.d"
  "liblightrw_graph.a"
  "liblightrw_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
