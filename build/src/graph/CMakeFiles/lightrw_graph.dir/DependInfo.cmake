
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/lightrw_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/lightrw_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/lightrw_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/lightrw_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/lightrw_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/lightrw_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/transforms.cc" "src/graph/CMakeFiles/lightrw_graph.dir/transforms.cc.o" "gcc" "src/graph/CMakeFiles/lightrw_graph.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightrw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/lightrw_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
