file(REMOVE_RECURSE
  "CMakeFiles/lightrw_baseline.dir/engine.cc.o"
  "CMakeFiles/lightrw_baseline.dir/engine.cc.o.d"
  "CMakeFiles/lightrw_baseline.dir/llc_model.cc.o"
  "CMakeFiles/lightrw_baseline.dir/llc_model.cc.o.d"
  "CMakeFiles/lightrw_baseline.dir/rejection.cc.o"
  "CMakeFiles/lightrw_baseline.dir/rejection.cc.o.d"
  "CMakeFiles/lightrw_baseline.dir/static_index.cc.o"
  "CMakeFiles/lightrw_baseline.dir/static_index.cc.o.d"
  "liblightrw_baseline.a"
  "liblightrw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
