# Empty compiler generated dependencies file for lightrw_baseline.
# This may be replaced when dependencies are built.
