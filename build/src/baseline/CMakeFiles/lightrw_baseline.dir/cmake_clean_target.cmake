file(REMOVE_RECURSE
  "liblightrw_baseline.a"
)
