file(REMOVE_RECURSE
  "CMakeFiles/lightrw_analytics.dir/corpus_io.cc.o"
  "CMakeFiles/lightrw_analytics.dir/corpus_io.cc.o.d"
  "CMakeFiles/lightrw_analytics.dir/embedding.cc.o"
  "CMakeFiles/lightrw_analytics.dir/embedding.cc.o.d"
  "CMakeFiles/lightrw_analytics.dir/link_prediction.cc.o"
  "CMakeFiles/lightrw_analytics.dir/link_prediction.cc.o.d"
  "CMakeFiles/lightrw_analytics.dir/ppr.cc.o"
  "CMakeFiles/lightrw_analytics.dir/ppr.cc.o.d"
  "CMakeFiles/lightrw_analytics.dir/walk_stats.cc.o"
  "CMakeFiles/lightrw_analytics.dir/walk_stats.cc.o.d"
  "liblightrw_analytics.a"
  "liblightrw_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
