
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/corpus_io.cc" "src/analytics/CMakeFiles/lightrw_analytics.dir/corpus_io.cc.o" "gcc" "src/analytics/CMakeFiles/lightrw_analytics.dir/corpus_io.cc.o.d"
  "/root/repo/src/analytics/embedding.cc" "src/analytics/CMakeFiles/lightrw_analytics.dir/embedding.cc.o" "gcc" "src/analytics/CMakeFiles/lightrw_analytics.dir/embedding.cc.o.d"
  "/root/repo/src/analytics/link_prediction.cc" "src/analytics/CMakeFiles/lightrw_analytics.dir/link_prediction.cc.o" "gcc" "src/analytics/CMakeFiles/lightrw_analytics.dir/link_prediction.cc.o.d"
  "/root/repo/src/analytics/ppr.cc" "src/analytics/CMakeFiles/lightrw_analytics.dir/ppr.cc.o" "gcc" "src/analytics/CMakeFiles/lightrw_analytics.dir/ppr.cc.o.d"
  "/root/repo/src/analytics/walk_stats.cc" "src/analytics/CMakeFiles/lightrw_analytics.dir/walk_stats.cc.o" "gcc" "src/analytics/CMakeFiles/lightrw_analytics.dir/walk_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightrw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightrw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/lightrw_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lightrw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lightrw_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lightrw_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
