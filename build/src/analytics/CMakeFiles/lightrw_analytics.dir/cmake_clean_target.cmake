file(REMOVE_RECURSE
  "liblightrw_analytics.a"
)
