# Empty dependencies file for lightrw_analytics.
# This may be replaced when dependencies are built.
