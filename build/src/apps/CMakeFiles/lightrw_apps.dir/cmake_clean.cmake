file(REMOVE_RECURSE
  "CMakeFiles/lightrw_apps.dir/walk_app.cc.o"
  "CMakeFiles/lightrw_apps.dir/walk_app.cc.o.d"
  "CMakeFiles/lightrw_apps.dir/weighted_metapath.cc.o"
  "CMakeFiles/lightrw_apps.dir/weighted_metapath.cc.o.d"
  "liblightrw_apps.a"
  "liblightrw_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
