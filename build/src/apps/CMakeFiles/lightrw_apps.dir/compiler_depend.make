# Empty compiler generated dependencies file for lightrw_apps.
# This may be replaced when dependencies are built.
