file(REMOVE_RECURSE
  "liblightrw_apps.a"
)
