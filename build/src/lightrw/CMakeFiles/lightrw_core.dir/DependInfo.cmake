
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lightrw/burst_engine.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/burst_engine.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/burst_engine.cc.o.d"
  "/root/repo/src/lightrw/config_validation.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/config_validation.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/config_validation.cc.o.d"
  "/root/repo/src/lightrw/cycle_engine.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/cycle_engine.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/cycle_engine.cc.o.d"
  "/root/repo/src/lightrw/functional_engine.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/functional_engine.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/functional_engine.cc.o.d"
  "/root/repo/src/lightrw/platform_models.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/platform_models.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/platform_models.cc.o.d"
  "/root/repo/src/lightrw/report.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/report.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/report.cc.o.d"
  "/root/repo/src/lightrw/step_sampler.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/step_sampler.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/step_sampler.cc.o.d"
  "/root/repo/src/lightrw/uniform_engine.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/uniform_engine.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/uniform_engine.cc.o.d"
  "/root/repo/src/lightrw/vertex_cache.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/vertex_cache.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/vertex_cache.cc.o.d"
  "/root/repo/src/lightrw/wrs_pipeline.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/wrs_pipeline.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/wrs_pipeline.cc.o.d"
  "/root/repo/src/lightrw/wrs_sampler_sim.cc" "src/lightrw/CMakeFiles/lightrw_core.dir/wrs_sampler_sim.cc.o" "gcc" "src/lightrw/CMakeFiles/lightrw_core.dir/wrs_sampler_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightrw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightrw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lightrw_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lightrw_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/lightrw_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lightrw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/lightrw_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
