file(REMOVE_RECURSE
  "CMakeFiles/lightrw_core.dir/burst_engine.cc.o"
  "CMakeFiles/lightrw_core.dir/burst_engine.cc.o.d"
  "CMakeFiles/lightrw_core.dir/config_validation.cc.o"
  "CMakeFiles/lightrw_core.dir/config_validation.cc.o.d"
  "CMakeFiles/lightrw_core.dir/cycle_engine.cc.o"
  "CMakeFiles/lightrw_core.dir/cycle_engine.cc.o.d"
  "CMakeFiles/lightrw_core.dir/functional_engine.cc.o"
  "CMakeFiles/lightrw_core.dir/functional_engine.cc.o.d"
  "CMakeFiles/lightrw_core.dir/platform_models.cc.o"
  "CMakeFiles/lightrw_core.dir/platform_models.cc.o.d"
  "CMakeFiles/lightrw_core.dir/report.cc.o"
  "CMakeFiles/lightrw_core.dir/report.cc.o.d"
  "CMakeFiles/lightrw_core.dir/step_sampler.cc.o"
  "CMakeFiles/lightrw_core.dir/step_sampler.cc.o.d"
  "CMakeFiles/lightrw_core.dir/uniform_engine.cc.o"
  "CMakeFiles/lightrw_core.dir/uniform_engine.cc.o.d"
  "CMakeFiles/lightrw_core.dir/vertex_cache.cc.o"
  "CMakeFiles/lightrw_core.dir/vertex_cache.cc.o.d"
  "CMakeFiles/lightrw_core.dir/wrs_pipeline.cc.o"
  "CMakeFiles/lightrw_core.dir/wrs_pipeline.cc.o.d"
  "CMakeFiles/lightrw_core.dir/wrs_sampler_sim.cc.o"
  "CMakeFiles/lightrw_core.dir/wrs_sampler_sim.cc.o.d"
  "liblightrw_core.a"
  "liblightrw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
