file(REMOVE_RECURSE
  "liblightrw_core.a"
)
