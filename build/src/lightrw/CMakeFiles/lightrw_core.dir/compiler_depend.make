# Empty compiler generated dependencies file for lightrw_core.
# This may be replaced when dependencies are built.
