file(REMOVE_RECURSE
  "CMakeFiles/wrs_sampler_sim_test.dir/wrs_sampler_sim_test.cc.o"
  "CMakeFiles/wrs_sampler_sim_test.dir/wrs_sampler_sim_test.cc.o.d"
  "wrs_sampler_sim_test"
  "wrs_sampler_sim_test.pdb"
  "wrs_sampler_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrs_sampler_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
