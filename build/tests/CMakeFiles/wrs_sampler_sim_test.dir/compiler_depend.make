# Empty compiler generated dependencies file for wrs_sampler_sim_test.
# This may be replaced when dependencies are built.
