# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wrs_sampler_sim_test.
