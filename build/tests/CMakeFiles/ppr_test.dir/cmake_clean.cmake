file(REMOVE_RECURSE
  "CMakeFiles/ppr_test.dir/ppr_test.cc.o"
  "CMakeFiles/ppr_test.dir/ppr_test.cc.o.d"
  "ppr_test"
  "ppr_test.pdb"
  "ppr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
