# Empty dependencies file for ppr_test.
# This may be replaced when dependencies are built.
