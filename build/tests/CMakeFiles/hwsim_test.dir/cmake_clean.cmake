file(REMOVE_RECURSE
  "CMakeFiles/hwsim_test.dir/hwsim_test.cc.o"
  "CMakeFiles/hwsim_test.dir/hwsim_test.cc.o.d"
  "hwsim_test"
  "hwsim_test.pdb"
  "hwsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
