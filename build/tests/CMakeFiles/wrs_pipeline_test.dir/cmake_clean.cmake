file(REMOVE_RECURSE
  "CMakeFiles/wrs_pipeline_test.dir/wrs_pipeline_test.cc.o"
  "CMakeFiles/wrs_pipeline_test.dir/wrs_pipeline_test.cc.o.d"
  "wrs_pipeline_test"
  "wrs_pipeline_test.pdb"
  "wrs_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrs_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
