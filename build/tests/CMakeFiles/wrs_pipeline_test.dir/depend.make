# Empty dependencies file for wrs_pipeline_test.
# This may be replaced when dependencies are built.
