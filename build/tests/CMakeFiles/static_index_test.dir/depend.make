# Empty dependencies file for static_index_test.
# This may be replaced when dependencies are built.
