file(REMOVE_RECURSE
  "CMakeFiles/static_index_test.dir/static_index_test.cc.o"
  "CMakeFiles/static_index_test.dir/static_index_test.cc.o.d"
  "static_index_test"
  "static_index_test.pdb"
  "static_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
