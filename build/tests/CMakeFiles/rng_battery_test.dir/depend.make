# Empty dependencies file for rng_battery_test.
# This may be replaced when dependencies are built.
