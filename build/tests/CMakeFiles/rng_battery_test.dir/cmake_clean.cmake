file(REMOVE_RECURSE
  "CMakeFiles/rng_battery_test.dir/rng_battery_test.cc.o"
  "CMakeFiles/rng_battery_test.dir/rng_battery_test.cc.o.d"
  "rng_battery_test"
  "rng_battery_test.pdb"
  "rng_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
