# Empty dependencies file for walk_stats_test.
# This may be replaced when dependencies are built.
