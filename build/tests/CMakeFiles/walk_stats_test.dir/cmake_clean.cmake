file(REMOVE_RECURSE
  "CMakeFiles/walk_stats_test.dir/walk_stats_test.cc.o"
  "CMakeFiles/walk_stats_test.dir/walk_stats_test.cc.o.d"
  "walk_stats_test"
  "walk_stats_test.pdb"
  "walk_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
