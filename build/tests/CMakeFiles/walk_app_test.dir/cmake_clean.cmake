file(REMOVE_RECURSE
  "CMakeFiles/walk_app_test.dir/walk_app_test.cc.o"
  "CMakeFiles/walk_app_test.dir/walk_app_test.cc.o.d"
  "walk_app_test"
  "walk_app_test.pdb"
  "walk_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
