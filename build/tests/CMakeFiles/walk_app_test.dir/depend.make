# Empty dependencies file for walk_app_test.
# This may be replaced when dependencies are built.
