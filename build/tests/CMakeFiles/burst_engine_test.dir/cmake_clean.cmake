file(REMOVE_RECURSE
  "CMakeFiles/burst_engine_test.dir/burst_engine_test.cc.o"
  "CMakeFiles/burst_engine_test.dir/burst_engine_test.cc.o.d"
  "burst_engine_test"
  "burst_engine_test.pdb"
  "burst_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
