file(REMOVE_RECURSE
  "CMakeFiles/baseline_engine_test.dir/baseline_engine_test.cc.o"
  "CMakeFiles/baseline_engine_test.dir/baseline_engine_test.cc.o.d"
  "baseline_engine_test"
  "baseline_engine_test.pdb"
  "baseline_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
