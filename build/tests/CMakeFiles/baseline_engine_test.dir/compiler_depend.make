# Empty compiler generated dependencies file for baseline_engine_test.
# This may be replaced when dependencies are built.
