file(REMOVE_RECURSE
  "CMakeFiles/uniform_engine_test.dir/uniform_engine_test.cc.o"
  "CMakeFiles/uniform_engine_test.dir/uniform_engine_test.cc.o.d"
  "uniform_engine_test"
  "uniform_engine_test.pdb"
  "uniform_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
