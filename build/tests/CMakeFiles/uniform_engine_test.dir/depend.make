# Empty dependencies file for uniform_engine_test.
# This may be replaced when dependencies are built.
