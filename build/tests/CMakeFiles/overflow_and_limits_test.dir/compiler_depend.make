# Empty compiler generated dependencies file for overflow_and_limits_test.
# This may be replaced when dependencies are built.
