file(REMOVE_RECURSE
  "CMakeFiles/overflow_and_limits_test.dir/overflow_and_limits_test.cc.o"
  "CMakeFiles/overflow_and_limits_test.dir/overflow_and_limits_test.cc.o.d"
  "overflow_and_limits_test"
  "overflow_and_limits_test.pdb"
  "overflow_and_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_and_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
