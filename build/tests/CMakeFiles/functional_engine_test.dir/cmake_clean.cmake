file(REMOVE_RECURSE
  "CMakeFiles/functional_engine_test.dir/functional_engine_test.cc.o"
  "CMakeFiles/functional_engine_test.dir/functional_engine_test.cc.o.d"
  "functional_engine_test"
  "functional_engine_test.pdb"
  "functional_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
