file(REMOVE_RECURSE
  "CMakeFiles/cycle_engine_test.dir/cycle_engine_test.cc.o"
  "CMakeFiles/cycle_engine_test.dir/cycle_engine_test.cc.o.d"
  "cycle_engine_test"
  "cycle_engine_test.pdb"
  "cycle_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
