# Empty compiler generated dependencies file for cycle_engine_test.
# This may be replaced when dependencies are built.
