# Empty dependencies file for graph_transforms_test.
# This may be replaced when dependencies are built.
