file(REMOVE_RECURSE
  "CMakeFiles/graph_transforms_test.dir/graph_transforms_test.cc.o"
  "CMakeFiles/graph_transforms_test.dir/graph_transforms_test.cc.o.d"
  "graph_transforms_test"
  "graph_transforms_test.pdb"
  "graph_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
