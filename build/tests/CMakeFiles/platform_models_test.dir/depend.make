# Empty dependencies file for platform_models_test.
# This may be replaced when dependencies are built.
