file(REMOVE_RECURSE
  "CMakeFiles/platform_models_test.dir/platform_models_test.cc.o"
  "CMakeFiles/platform_models_test.dir/platform_models_test.cc.o.d"
  "platform_models_test"
  "platform_models_test.pdb"
  "platform_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
