# Empty compiler generated dependencies file for fig12_burst_strategy.
# This may be replaced when dependencies are built.
