file(REMOVE_RECURSE
  "CMakeFiles/fig12_burst_strategy.dir/fig12_burst_strategy.cc.o"
  "CMakeFiles/fig12_burst_strategy.dir/fig12_burst_strategy.cc.o.d"
  "fig12_burst_strategy"
  "fig12_burst_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_burst_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
