file(REMOVE_RECURSE
  "CMakeFiles/fig6_burst_bandwidth.dir/fig6_burst_bandwidth.cc.o"
  "CMakeFiles/fig6_burst_bandwidth.dir/fig6_burst_bandwidth.cc.o.d"
  "fig6_burst_bandwidth"
  "fig6_burst_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_burst_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
