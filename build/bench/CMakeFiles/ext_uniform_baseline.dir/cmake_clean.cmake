file(REMOVE_RECURSE
  "CMakeFiles/ext_uniform_baseline.dir/ext_uniform_baseline.cc.o"
  "CMakeFiles/ext_uniform_baseline.dir/ext_uniform_baseline.cc.o.d"
  "ext_uniform_baseline"
  "ext_uniform_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_uniform_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
