# Empty compiler generated dependencies file for ext_uniform_baseline.
# This may be replaced when dependencies are built.
