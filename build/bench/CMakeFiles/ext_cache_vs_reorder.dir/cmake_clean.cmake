file(REMOVE_RECURSE
  "CMakeFiles/ext_cache_vs_reorder.dir/ext_cache_vs_reorder.cc.o"
  "CMakeFiles/ext_cache_vs_reorder.dir/ext_cache_vs_reorder.cc.o.d"
  "ext_cache_vs_reorder"
  "ext_cache_vs_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cache_vs_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
