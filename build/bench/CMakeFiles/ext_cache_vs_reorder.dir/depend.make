# Empty dependencies file for ext_cache_vs_reorder.
# This may be replaced when dependencies are built.
