file(REMOVE_RECURSE
  "CMakeFiles/lightrw_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/lightrw_bench_util.dir/bench_util.cc.o.d"
  "liblightrw_bench_util.a"
  "liblightrw_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightrw_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
