# Empty dependencies file for lightrw_bench_util.
# This may be replaced when dependencies are built.
