file(REMOVE_RECURSE
  "liblightrw_bench_util.a"
)
