# Empty dependencies file for table1_cpu_profile.
# This may be replaced when dependencies are built.
