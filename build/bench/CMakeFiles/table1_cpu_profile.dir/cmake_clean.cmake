file(REMOVE_RECURSE
  "CMakeFiles/table1_cpu_profile.dir/table1_cpu_profile.cc.o"
  "CMakeFiles/table1_cpu_profile.dir/table1_cpu_profile.cc.o.d"
  "table1_cpu_profile"
  "table1_cpu_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cpu_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
