file(REMOVE_RECURSE
  "CMakeFiles/fig18_link_prediction.dir/fig18_link_prediction.cc.o"
  "CMakeFiles/fig18_link_prediction.dir/fig18_link_prediction.cc.o.d"
  "fig18_link_prediction"
  "fig18_link_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_link_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
