# Empty dependencies file for fig18_link_prediction.
# This may be replaced when dependencies are built.
