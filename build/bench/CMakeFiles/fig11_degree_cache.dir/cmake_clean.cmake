file(REMOVE_RECURSE
  "CMakeFiles/fig11_degree_cache.dir/fig11_degree_cache.cc.o"
  "CMakeFiles/fig11_degree_cache.dir/fig11_degree_cache.cc.o.d"
  "fig11_degree_cache"
  "fig11_degree_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_degree_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
