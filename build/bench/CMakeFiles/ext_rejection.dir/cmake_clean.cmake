file(REMOVE_RECURSE
  "CMakeFiles/ext_rejection.dir/ext_rejection.cc.o"
  "CMakeFiles/ext_rejection.dir/ext_rejection.cc.o.d"
  "ext_rejection"
  "ext_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
