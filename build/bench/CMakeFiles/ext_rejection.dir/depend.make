# Empty dependencies file for ext_rejection.
# This may be replaced when dependencies are built.
