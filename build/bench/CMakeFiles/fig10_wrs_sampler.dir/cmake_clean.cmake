file(REMOVE_RECURSE
  "CMakeFiles/fig10_wrs_sampler.dir/fig10_wrs_sampler.cc.o"
  "CMakeFiles/fig10_wrs_sampler.dir/fig10_wrs_sampler.cc.o.d"
  "fig10_wrs_sampler"
  "fig10_wrs_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wrs_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
