# Empty dependencies file for fig10_wrs_sampler.
# This may be replaced when dependencies are built.
