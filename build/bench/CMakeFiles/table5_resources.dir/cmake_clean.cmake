file(REMOVE_RECURSE
  "CMakeFiles/table5_resources.dir/table5_resources.cc.o"
  "CMakeFiles/table5_resources.dir/table5_resources.cc.o.d"
  "table5_resources"
  "table5_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
