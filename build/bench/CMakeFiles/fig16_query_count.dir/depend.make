# Empty dependencies file for fig16_query_count.
# This may be replaced when dependencies are built.
