file(REMOVE_RECURSE
  "CMakeFiles/fig16_query_count.dir/fig16_query_count.cc.o"
  "CMakeFiles/fig16_query_count.dir/fig16_query_count.cc.o.d"
  "fig16_query_count"
  "fig16_query_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_query_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
