# Empty compiler generated dependencies file for fig17_query_length.
# This may be replaced when dependencies are built.
