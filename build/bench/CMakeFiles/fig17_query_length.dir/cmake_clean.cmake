file(REMOVE_RECURSE
  "CMakeFiles/fig17_query_length.dir/fig17_query_length.cc.o"
  "CMakeFiles/fig17_query_length.dir/fig17_query_length.cc.o.d"
  "fig17_query_length"
  "fig17_query_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_query_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
