file(REMOVE_RECURSE
  "CMakeFiles/ext_static_vs_dynamic.dir/ext_static_vs_dynamic.cc.o"
  "CMakeFiles/ext_static_vs_dynamic.dir/ext_static_vs_dynamic.cc.o.d"
  "ext_static_vs_dynamic"
  "ext_static_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_static_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
