# Empty compiler generated dependencies file for table4_pcie.
# This may be replaced when dependencies are built.
