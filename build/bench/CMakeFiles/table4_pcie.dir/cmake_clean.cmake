file(REMOVE_RECURSE
  "CMakeFiles/table4_pcie.dir/table4_pcie.cc.o"
  "CMakeFiles/table4_pcie.dir/table4_pcie.cc.o.d"
  "table4_pcie"
  "table4_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
