file(REMOVE_RECURSE
  "CMakeFiles/node2vec_link_prediction.dir/node2vec_link_prediction.cpp.o"
  "CMakeFiles/node2vec_link_prediction.dir/node2vec_link_prediction.cpp.o.d"
  "node2vec_link_prediction"
  "node2vec_link_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node2vec_link_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
