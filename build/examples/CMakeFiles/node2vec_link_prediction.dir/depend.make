# Empty dependencies file for node2vec_link_prediction.
# This may be replaced when dependencies are built.
