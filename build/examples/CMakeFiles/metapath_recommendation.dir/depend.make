# Empty dependencies file for metapath_recommendation.
# This may be replaced when dependencies are built.
