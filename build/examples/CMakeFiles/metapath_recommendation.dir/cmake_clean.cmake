file(REMOVE_RECURSE
  "CMakeFiles/metapath_recommendation.dir/metapath_recommendation.cpp.o"
  "CMakeFiles/metapath_recommendation.dir/metapath_recommendation.cpp.o.d"
  "metapath_recommendation"
  "metapath_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
