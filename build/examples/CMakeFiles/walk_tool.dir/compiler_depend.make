# Empty compiler generated dependencies file for walk_tool.
# This may be replaced when dependencies are built.
