file(REMOVE_RECURSE
  "CMakeFiles/walk_tool.dir/walk_tool.cpp.o"
  "CMakeFiles/walk_tool.dir/walk_tool.cpp.o.d"
  "walk_tool"
  "walk_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
