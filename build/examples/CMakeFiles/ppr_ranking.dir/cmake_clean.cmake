file(REMOVE_RECURSE
  "CMakeFiles/ppr_ranking.dir/ppr_ranking.cpp.o"
  "CMakeFiles/ppr_ranking.dir/ppr_ranking.cpp.o.d"
  "ppr_ranking"
  "ppr_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
