# Empty compiler generated dependencies file for ppr_ranking.
# This may be replaced when dependencies are built.
