
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ppr_ranking.cpp" "examples/CMakeFiles/ppr_ranking.dir/ppr_ranking.cpp.o" "gcc" "examples/CMakeFiles/ppr_ranking.dir/ppr_ranking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lightrw/CMakeFiles/lightrw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lightrw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/lightrw_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/lightrw_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/lightrw_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lightrw_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightrw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/lightrw_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lightrw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
