# Empty compiler generated dependencies file for accelerator_simulation.
# This may be replaced when dependencies are built.
