file(REMOVE_RECURSE
  "CMakeFiles/accelerator_simulation.dir/accelerator_simulation.cpp.o"
  "CMakeFiles/accelerator_simulation.dir/accelerator_simulation.cpp.o.d"
  "accelerator_simulation"
  "accelerator_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
